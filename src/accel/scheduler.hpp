// Subgraph scheduler (paper §III.D "Subgraph Scheduling").
//
// Keeps the scoreboard (per-subgraph walk counts in the partition walk
// buffer and in flash) and decides which subgraph a chip loads next.
//
// With SS enabled, subgraphs are ranked by Eq. 1:
//     score_i = (pwb·α + fl)·β   for non-dense subgraphs
//     score_i =  pwb·α + fl      for dense subgraphs
// using per-chip top-N lists refreshed lazily every M insertions, so a pick
// costs N comparisons instead of a full scan. With SS disabled, the
// scheduler scans the chip's candidates for the most-walks subgraph
// (GraphWalker's policy), which is the Fig 9 baseline.
//
// Multi-job runs (configure_jobs with >1 weight) add a weighted-fair layer:
// each job carries a service counter charged with the plane-read pages its
// walks' subgraph loads consume, normalized by the job's QoS weight
// (deficit-round-robin over flash-read grants). Picks then choose, among the
// ranked candidates, the one whose neediest resident job has the least
// normalized service — most-walks-first (Eq. 1) breaks ties, so the paper's
// heuristic is preserved within a fairness class. Single-job runs bypass
// the fairness layer entirely and keep the exact paper pick sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/topn.hpp"
#include "accel/config.hpp"
#include "partition/partitioned_graph.hpp"
#include "ssd/graph_layout.hpp"

namespace fw::accel {

class SubgraphScheduler {
 public:
  SubgraphScheduler(const partition::PartitionedGraph& pg, const ssd::GraphLayout& layout,
                    const AccelConfig& config, std::uint32_t num_chips,
                    std::uint32_t chips_per_channel);

  /// Reset for a new current partition; candidate sets are that partition's
  /// subgraphs grouped by owning chip.
  void begin_partition(PartitionId p);

  /// Enable the weighted-fair pick layer for a multi-job run: one fair-share
  /// weight per job (zero weights are clamped to 1). A single weight (or
  /// never calling this) keeps the single-workload policy.
  void configure_jobs(std::vector<std::uint32_t> weights);

  /// A walk entered subgraph `sg`'s partition-walk-buffer entry (or, with
  /// `to_flash`, was counted as resident in flash).
  void on_walk_insert(SubgraphId sg, bool to_flash = false);
  /// Job-attributed variant: also tracks the per-job walk composition of
  /// `sg` for fair-share accounting.
  void on_walk_insert(SubgraphId sg, std::uint16_t job, bool to_flash = false);

  /// A pwb entry overflowed: its `n` walks moved to flash.
  void on_entry_flushed(SubgraphId sg, std::uint64_t n);

  /// A subgraph load consumed all buffered walks of `sg`; `granted_pages`
  /// is the plane-read page count the load was charged (0 for walk-fetch
  /// refreshes), billed to the resident jobs in proportion to their walks.
  void on_subgraph_loaded(SubgraphId sg, std::uint32_t granted_pages = 0);

  /// Weight-normalized service a job has received so far (test hook).
  [[nodiscard]] double job_service(std::uint16_t job) const;

  [[nodiscard]] std::uint64_t pwb_count(SubgraphId sg) const { return state_[sg].pwb; }
  [[nodiscard]] std::uint64_t fl_count(SubgraphId sg) const { return state_[sg].fl; }
  [[nodiscard]] std::uint64_t pending_walks(SubgraphId sg) const {
    return state_[sg].pwb + state_[sg].fl;
  }

  /// Eq. 1 critical degree.
  [[nodiscard]] double score(SubgraphId sg) const;

  struct Pick {
    SubgraphId sg = kInvalidSubgraph;
    std::uint32_t compare_ops = 0;  ///< scheduling work, for cycle charging
  };

  /// Choose the next subgraph for `chip_global`; `eligible` filters out
  /// subgraphs already loaded or being loaded. Returns nullopt when no
  /// candidate has pending walks.
  std::optional<Pick> pick_for_chip(
      std::uint32_t chip_global,
      const std::function<bool(SubgraphId)>& eligible);

 private:
  struct SgState {
    std::uint64_t pwb = 0;
    std::uint64_t fl = 0;
    std::uint32_t inserts_since_update = 0;
  };

  void maybe_refresh_topn(SubgraphId sg);
  [[nodiscard]] bool fair() const { return job_weight_.size() > 1; }
  /// Least weight-normalized service over the jobs with pending walks on
  /// `sg`; 0 when no walk is attributed (treated as top priority).
  [[nodiscard]] double fair_need(SubgraphId sg) const;

  const partition::PartitionedGraph* pg_;
  const ssd::GraphLayout* layout_;
  AccelConfig config_;
  std::uint32_t num_chips_;
  std::vector<SgState> state_;                      // per subgraph
  std::vector<std::uint32_t> chip_of_sg_;           // global chip index per subgraph
  std::vector<std::vector<SubgraphId>> candidates_; // per chip, current partition
  std::vector<TopNList> topn_;                      // per chip (SS only)
  PartitionId current_partition_ = 0;

  // Weighted-fair state (multi-job runs only; empty otherwise).
  std::vector<std::uint32_t> job_weight_;   // per job
  std::vector<double> job_service_;         // plane-read pages charged, per job
  std::vector<std::uint64_t> job_pending_;  // [sg * J + j] pending-walk counts
};

}  // namespace fw::accel
