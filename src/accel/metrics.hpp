// Engine-level counters behind Figs 6, 8, 9 and the speedup tables.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fw::accel {

struct EngineMetrics {
  // Walk progress.
  std::uint64_t walks_started = 0;
  std::uint64_t walks_completed = 0;
  std::uint64_t dead_ends = 0;
  std::uint64_t total_hops = 0;

  // Where updates ran (the heterogeneous-hierarchy story).
  std::uint64_t chip_updates = 0;
  std::uint64_t channel_updates = 0;
  std::uint64_t board_updates = 0;

  // Movement between levels.
  std::uint64_t roving_walks = 0;      ///< chip → channel pulls
  std::uint64_t to_board_walks = 0;    ///< channel → board forwards
  std::uint64_t foreigner_walks = 0;
  std::uint64_t pwb_inserts = 0;

  // Subgraph traffic.
  std::uint64_t subgraph_loads = 0;
  std::uint64_t subgraph_load_pages = 0;
  std::uint64_t hot_subgraph_loads = 0;

  // Walk query machinery (WQ).
  std::uint64_t query_cache_hits = 0;
  std::uint64_t query_cache_misses = 0;
  std::uint64_t mapping_search_steps = 0;
  std::uint64_t range_searches = 0;
  std::uint64_t range_tagged_walks = 0;
  std::uint64_t range_foreigner_hints = 0;  ///< foreigners caught by the range check

  // Dense-vertex machinery.
  std::uint64_t bloom_lookups = 0;
  std::uint64_t bloom_false_positives = 0;
  std::uint64_t dense_prewalks = 0;

  // Buffer overflow behaviour (what SS minimizes).
  std::uint64_t pwb_overflow_events = 0;
  std::uint64_t pwb_overflow_walks = 0;
  std::uint64_t completed_flush_pages = 0;
  std::uint64_t foreigner_flush_pages = 0;
  std::uint64_t overflow_flush_pages = 0;
  std::uint64_t walk_reload_pages = 0;  ///< fl walks read back at subgraph load

  std::uint64_t partition_switches = 0;
  std::uint64_t scheduler_compare_ops = 0;

  // Reliability handling (all zero unless the NAND fault model is enabled).
  std::uint64_t parked_walks = 0;     ///< walks parked behind retrying loads
  std::uint64_t recovered_pages = 0;  ///< uncorrectable pages rebuilt at board
  std::uint64_t degraded_loads = 0;   ///< subgraph loads with >= 1 lost page
};

}  // namespace fw::accel
