// Engine-level counters behind Figs 6, 8, 9 and the speedup tables.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fw::accel {

struct EngineMetrics {
  // Walk progress.
  std::uint64_t walks_started = 0;
  std::uint64_t walks_completed = 0;
  std::uint64_t dead_ends = 0;
  std::uint64_t total_hops = 0;

  // Where updates ran (the heterogeneous-hierarchy story).
  std::uint64_t chip_updates = 0;
  std::uint64_t channel_updates = 0;
  std::uint64_t board_updates = 0;

  // Movement between levels.
  std::uint64_t roving_walks = 0;      ///< chip → channel pulls
  std::uint64_t to_board_walks = 0;    ///< channel → board forwards
  std::uint64_t foreigner_walks = 0;
  std::uint64_t pwb_inserts = 0;

  // Subgraph traffic.
  std::uint64_t subgraph_loads = 0;
  std::uint64_t subgraph_load_pages = 0;
  std::uint64_t hot_subgraph_loads = 0;

  // Walk query machinery (WQ).
  std::uint64_t query_cache_hits = 0;
  std::uint64_t query_cache_misses = 0;
  std::uint64_t mapping_search_steps = 0;
  std::uint64_t range_searches = 0;
  std::uint64_t range_tagged_walks = 0;
  std::uint64_t range_foreigner_hints = 0;  ///< foreigners caught by the range check

  // Dense-vertex machinery.
  std::uint64_t bloom_lookups = 0;
  std::uint64_t bloom_false_positives = 0;
  std::uint64_t dense_prewalks = 0;

  // Buffer overflow behaviour (what SS minimizes).
  std::uint64_t pwb_overflow_events = 0;
  std::uint64_t pwb_overflow_walks = 0;
  std::uint64_t completed_flush_pages = 0;
  std::uint64_t foreigner_flush_pages = 0;
  std::uint64_t overflow_flush_pages = 0;
  std::uint64_t walk_reload_pages = 0;  ///< fl walks read back at subgraph load

  std::uint64_t partition_switches = 0;
  std::uint64_t scheduler_compare_ops = 0;

  // Reliability handling (all zero unless the NAND fault model is enabled).
  std::uint64_t parked_walks = 0;     ///< walks parked behind retrying loads
  std::uint64_t recovered_pages = 0;  ///< uncorrectable pages rebuilt at board
  std::uint64_t degraded_loads = 0;   ///< subgraph loads with >= 1 lost page

  // Cross-device forwarding (all zero outside multi-board array runs).
  std::uint64_t forwarded_out_walks = 0;  ///< walks sent to another board
  std::uint64_t forwarded_in_walks = 0;   ///< walks re-admitted from the fabric
  std::uint64_t forward_batches = 0;      ///< forwarding-buffer flushes
  std::uint64_t forward_timeout_flushes = 0;  ///< flushes forced by the timeout
  std::uint64_t forwarded_bytes = 0;      ///< serialized walk bytes shipped out

  /// Field-wise accumulate: the concurrent engine keeps one EngineMetrics
  /// per shard (single writer each) and folds them into the run totals at
  /// the end of the run. Every counter is a sum, so the merge is exact.
  EngineMetrics& operator+=(const EngineMetrics& o) {
    walks_started += o.walks_started;
    walks_completed += o.walks_completed;
    dead_ends += o.dead_ends;
    total_hops += o.total_hops;
    chip_updates += o.chip_updates;
    channel_updates += o.channel_updates;
    board_updates += o.board_updates;
    roving_walks += o.roving_walks;
    to_board_walks += o.to_board_walks;
    foreigner_walks += o.foreigner_walks;
    pwb_inserts += o.pwb_inserts;
    subgraph_loads += o.subgraph_loads;
    subgraph_load_pages += o.subgraph_load_pages;
    hot_subgraph_loads += o.hot_subgraph_loads;
    query_cache_hits += o.query_cache_hits;
    query_cache_misses += o.query_cache_misses;
    mapping_search_steps += o.mapping_search_steps;
    range_searches += o.range_searches;
    range_tagged_walks += o.range_tagged_walks;
    range_foreigner_hints += o.range_foreigner_hints;
    bloom_lookups += o.bloom_lookups;
    bloom_false_positives += o.bloom_false_positives;
    dense_prewalks += o.dense_prewalks;
    pwb_overflow_events += o.pwb_overflow_events;
    pwb_overflow_walks += o.pwb_overflow_walks;
    completed_flush_pages += o.completed_flush_pages;
    foreigner_flush_pages += o.foreigner_flush_pages;
    overflow_flush_pages += o.overflow_flush_pages;
    walk_reload_pages += o.walk_reload_pages;
    partition_switches += o.partition_switches;
    scheduler_compare_ops += o.scheduler_compare_ops;
    parked_walks += o.parked_walks;
    recovered_pages += o.recovered_pages;
    degraded_loads += o.degraded_loads;
    forwarded_out_walks += o.forwarded_out_walks;
    forwarded_in_walks += o.forwarded_in_walks;
    forward_batches += o.forward_batches;
    forward_timeout_flushes += o.forward_timeout_flushes;
    forwarded_bytes += o.forwarded_bytes;
    return *this;
  }
};

}  // namespace fw::accel
