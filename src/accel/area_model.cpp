#include "accel/area_model.hpp"

#include <cmath>

#include "common/units.hpp"

namespace fw::accel {
namespace {

double sram_area(std::uint64_t bytes, const AreaModelParams& p) {
  if (bytes == 0) return 0.0;
  const double kib = static_cast<double>(bytes) / 1024.0;
  return p.sram_coeff_mm2 * std::pow(kib, p.sram_exponent);
}

}  // namespace

AreaBreakdown estimate_area(const AccelConfig& cfg, AccelLevel level,
                            const AreaModelParams& params) {
  AreaBreakdown area;
  const LevelConfig* lc = nullptr;
  switch (level) {
    case AccelLevel::kChip:
      lc = &cfg.chip;
      break;
    case AccelLevel::kChannel:
      lc = &cfg.channel;
      break;
    case AccelLevel::kBoard:
      lc = &cfg.board;
      break;
  }

  const std::uint64_t buffer_bytes = lc->subgraph_buffer_bytes + lc->walk_queue_bytes +
                                     lc->guide_buffer_bytes + lc->roving_buffer_bytes;
  area.sram_mm2 = sram_area(buffer_bytes, params);

  if (level == AccelLevel::kBoard) {
    const std::uint64_t table_bytes =
        cfg.mapping_table_bytes + cfg.dense_table_bytes +
        cfg.query_cache_count * cfg.query_cache_bytes + cfg.completed_buffer_bytes +
        cfg.foreigner_buffer_bytes;
    area.tables_mm2 = sram_area(table_bytes, params);
  }

  // Board PEs clock 2x faster than chip/channel PEs (1 GHz vs 500 MHz);
  // charge them 1.5x logic area for the deeper pipeline.
  const double pe_scale = level == AccelLevel::kBoard ? 1.5 : 1.0;
  area.logic_mm2 = pe_scale * (lc->updaters * params.updater_mm2 +
                               lc->guiders * params.guider_mm2);
  area.logic_mm2 *= 1.0 + params.control_overhead;
  return area;
}

double paper_area_mm2(AccelLevel level) {
  switch (level) {
    case AccelLevel::kChip:
      return 1.30;
    case AccelLevel::kChannel:
      return 1.84;
    case AccelLevel::kBoard:
      return 14.31;
  }
  return 0.0;
}

}  // namespace fw::accel
