#include "accel/service/jobs_spec.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fw::accel::service {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

[[noreturn]] void fail(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("--jobs entry '" + entry + "': " + why);
}

std::uint64_t parse_u64(const std::string& entry, const std::string& v) {
  try {
    std::size_t pos = 0;
    const std::uint64_t r = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    fail(entry, "expected an integer, got '" + v + "'");
  }
}

double parse_f64(const std::string& entry, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double r = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    fail(entry, "expected a number, got '" + v + "'");
  }
}

}  // namespace

std::vector<WalkJob> parse_jobs(const std::string& spec,
                                const JobSpecDefaults& defaults) {
  std::vector<WalkJob> jobs;
  for (const std::string& raw : split(spec, ';')) {
    if (raw.empty()) fail(raw, "empty entry");

    std::string entry = raw;
    std::uint64_t count = 1;
    if (const std::size_t star = entry.find('*'); star != std::string::npos) {
      count = parse_u64(raw, entry.substr(0, star));
      if (count == 0) fail(raw, "repeat count must be >= 1");
      entry = entry.substr(star + 1);
    }

    std::string model = entry;
    std::string kvs;
    if (const std::size_t colon = entry.find(':'); colon != std::string::npos) {
      model = entry.substr(0, colon);
      kvs = entry.substr(colon + 1);
    }

    WalkJob job;
    job.name = model;
    job.spec.num_walks = defaults.walks;
    job.spec.length = defaults.length;
    bool seed_set = false;
    if (model == "deepwalk") {
      job.spec.start_mode = rw::StartMode::kUniformRandom;
    } else if (model == "node2vec") {
      job.spec.start_mode = rw::StartMode::kUniformRandom;
      job.spec.second_order.enabled = true;
    } else if (model == "ppr") {
      // Monte-Carlo PPR: all walks from one source, geometric termination,
      // restart at the source on dead ends.
      job.spec.start_mode = rw::StartMode::kSingleSource;
      job.spec.stop_prob = 0.15;
      job.spec.dead_end = rw::WalkSpec::DeadEnd::kRestart;
    } else {
      fail(raw, "unknown model '" + model + "' (deepwalk|node2vec|ppr)");
    }

    if (!kvs.empty()) {
      for (const std::string& kv : split(kvs, ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) fail(raw, "expected key=value, got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "walks") {
          job.spec.num_walks = parse_u64(raw, val);
        } else if (key == "length") {
          job.spec.length = static_cast<std::uint32_t>(parse_u64(raw, val));
        } else if (key == "seed") {
          job.spec.seed = parse_u64(raw, val);
          seed_set = true;
        } else if (key == "weight") {
          job.weight = static_cast<std::uint32_t>(parse_u64(raw, val));
        } else if (key == "arrive") {
          job.arrival = parse_u64(raw, val);
        } else if (key == "source") {
          job.spec.source = static_cast<VertexId>(parse_u64(raw, val));
        } else if (key == "qos") {
          if (val == "bronze") {
            job.qos = QosClass::kBronze;
          } else if (val == "silver") {
            job.qos = QosClass::kSilver;
          } else if (val == "gold") {
            job.qos = QosClass::kGold;
          } else {
            fail(raw, "qos must be bronze|silver|gold, got '" + val + "'");
          }
        } else if (key == "start") {
          if (val == "random") {
            job.spec.start_mode = rw::StartMode::kUniformRandom;
          } else if (val == "all") {
            job.spec.start_mode = rw::StartMode::kAllVertices;
          } else if (val == "source") {
            job.spec.start_mode = rw::StartMode::kSingleSource;
          } else {
            fail(raw, "start must be random|all|source, got '" + val + "'");
          }
        } else if (key == "p" && model == "node2vec") {
          job.spec.second_order.p = parse_f64(raw, val);
        } else if (key == "q" && model == "node2vec") {
          job.spec.second_order.q = parse_f64(raw, val);
        } else if (key == "stop" && model == "ppr") {
          job.spec.stop_prob = parse_f64(raw, val);
        } else {
          fail(raw, "unknown key '" + key + "' for model '" + model + "'");
        }
      }
    }

    for (std::uint64_t i = 0; i < count; ++i) {
      WalkJob j = job;
      const std::size_t index = jobs.size();
      if (!seed_set) j.spec.seed = defaults.base_seed + kSeedStride * index;
      j.name = model + "#" + std::to_string(index);
      jobs.push_back(std::move(j));
    }
  }
  if (jobs.empty()) throw std::invalid_argument("--jobs: no entries");
  return jobs;
}

std::string jobs_help() {
  return "job mix: [N*]model[:key=val,...] entries joined by ';'\n"
         "  models: deepwalk (uniform random-start), node2vec (second-order,\n"
         "          keys p/q), ppr (single-source, keys stop/source)\n"
         "  common keys: walks, length, seed, qos=bronze|silver|gold, weight,\n"
         "               arrive (ns), start=random|all|source, source\n"
         "  unseeded jobs get seed = base-seed + 7919 * job-index\n"
         "  example: \"2*deepwalk:walks=1000;node2vec:p=0.5,q=2;ppr:source=3\"";
}

}  // namespace fw::accel::service
