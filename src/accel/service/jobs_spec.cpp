#include "accel/service/jobs_spec.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rw/model/registry.hpp"

namespace fw::accel::service {
namespace {

constexpr std::string_view kCommonKeys =
    "walks, length, seed, weight, arrive, source, qos, start";

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

[[noreturn]] void fail(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("--jobs entry '" + entry + "': " + why);
}

std::uint64_t parse_u64(const std::string& entry, const std::string& v) {
  try {
    std::size_t pos = 0;
    const std::uint64_t r = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    fail(entry, "expected an integer, got '" + v + "'");
  }
}

/// "unknown key 'x' for model 'm' (model keys: ...; common keys: ...)".
[[noreturn]] void fail_unknown_key(const std::string& entry, const std::string& key,
                                   const rw::ModelInfo& info) {
  const std::string model_keys =
      info.keys.empty() ? "none" : std::string(info.keys);
  fail(entry, "unknown key '" + key + "' for model '" + std::string(info.name) +
                  "' (model keys: " + model_keys +
                  "; common keys: " + std::string(kCommonKeys) + ")");
}

/// True when `key` is a workload-common key (applied in place); false when
/// the owning model must interpret it.
bool apply_common_key(const std::string& raw, WalkJob& job, bool& seed_set,
                      const std::string& key, const std::string& val) {
  if (key == "walks") {
    job.spec.num_walks = parse_u64(raw, val);
  } else if (key == "length") {
    job.spec.length = static_cast<std::uint32_t>(parse_u64(raw, val));
  } else if (key == "seed") {
    job.spec.seed = parse_u64(raw, val);
    seed_set = true;
  } else if (key == "weight") {
    job.weight = static_cast<std::uint32_t>(parse_u64(raw, val));
  } else if (key == "arrive") {
    job.arrival = parse_u64(raw, val);
  } else if (key == "source") {
    job.spec.source = static_cast<VertexId>(parse_u64(raw, val));
  } else if (key == "qos") {
    if (val == "bronze") {
      job.qos = QosClass::kBronze;
    } else if (val == "silver") {
      job.qos = QosClass::kSilver;
    } else if (val == "gold") {
      job.qos = QosClass::kGold;
    } else {
      fail(raw, "qos must be bronze|silver|gold, got '" + val + "'");
    }
  } else if (key == "start") {
    if (val == "random") {
      job.spec.start_mode = rw::StartMode::kUniformRandom;
    } else if (val == "all") {
      job.spec.start_mode = rw::StartMode::kAllVertices;
    } else if (val == "source") {
      job.spec.start_mode = rw::StartMode::kSingleSource;
    } else {
      fail(raw, "start must be random|all|source, got '" + val + "'");
    }
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::vector<WalkJob> parse_jobs(const std::string& spec,
                                const JobSpecDefaults& defaults) {
  std::vector<WalkJob> jobs;
  for (const std::string& raw : split(spec, ';')) {
    if (raw.empty()) fail(raw, "empty entry");

    std::string entry = raw;
    std::uint64_t count = 1;
    if (const std::size_t star = entry.find('*'); star != std::string::npos) {
      count = parse_u64(raw, entry.substr(0, star));
      if (count == 0) fail(raw, "repeat count must be >= 1");
      entry = entry.substr(star + 1);
    }

    std::string model = entry;
    std::string kvs;
    if (const std::size_t colon = entry.find(':'); colon != std::string::npos) {
      model = entry.substr(0, colon);
      kvs = entry.substr(colon + 1);
    }

    const rw::ModelInfo* info = rw::find_model(model);
    if (info == nullptr) {
      fail(raw, "unknown model '" + model +
                    "' (registered: " + rw::registered_model_names() + ")");
    }

    WalkJob job;
    job.name = model;
    job.spec.num_walks = defaults.walks;
    job.spec.length = defaults.length;
    info->apply_defaults(job.spec);
    bool seed_set = false;

    if (!kvs.empty()) {
      for (const std::string& kv : split(kvs, ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) fail(raw, "expected key=value, got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (apply_common_key(raw, job, seed_set, key, val)) continue;
        try {
          if (!info->parse_key(job.spec, key, val)) fail_unknown_key(raw, key, *info);
        } catch (const std::invalid_argument& e) {
          // Re-wrap model-key diagnostics with the offending entry.
          const std::string why = e.what();
          if (why.rfind("--jobs", 0) == 0) throw;
          fail(raw, why);
        }
      }
    }

    // Model-parameter validation (alpha/eps ranges, pattern shape, ...)
    // happens at model construction; surface it here with entry context
    // instead of at engine build time.
    try {
      (void)rw::create_model(job.spec);
    } catch (const std::invalid_argument& e) {
      fail(raw, e.what());
    }

    for (std::uint64_t i = 0; i < count; ++i) {
      WalkJob j = job;
      const std::size_t index = jobs.size();
      if (!seed_set) j.spec.seed = defaults.base_seed + kSeedStride * index;
      j.name = model + "#" + std::to_string(index);
      jobs.push_back(std::move(j));
    }
  }
  if (jobs.empty()) throw std::invalid_argument("--jobs: no entries");
  return jobs;
}

std::string jobs_help() {
  std::string help =
      "job mix: [N*]model[:key=val,...] entries joined by ';'\n"
      "  models:\n";
  for (const rw::ModelInfo& m : rw::model_registry()) {
    help += "    " + std::string(m.name) + " — " + std::string(m.summary);
    if (!m.keys.empty()) help += " (keys: " + std::string(m.keys) + ")";
    help += '\n';
  }
  help += "  common keys: " + std::string(kCommonKeys) +
          "\n"
          "               qos=bronze|silver|gold, start=random|all|source\n"
          "  unseeded jobs get seed = base-seed + " +
          std::to_string(kSeedStride) +
          " * job-index\n"
          "  example: \"2*deepwalk:walks=1000;metapath:pattern=0-1-2;"
          "ppr:stop_mode=residual\"";
  return help;
}

}  // namespace fw::accel::service
