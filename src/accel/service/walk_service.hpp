// WalkService: the multi-tenant front end of the simulator.
//
// Clients submit WalkJobs (each its own walk model, walk count, RNG seed,
// QoS class, arrival time); the service applies admission control, then
// multiplexes the accepted jobs over one shared chip/channel/board
// accelerator hierarchy with weighted-fair flash-read scheduling. run()
// returns per-job outputs (bit-identical to each job's solo run, by the
// per-walk RNG-stream contract) plus service-level latency percentiles,
// aggregate throughput, and the fairness ratio.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "accel/builder.hpp"
#include "accel/engine.hpp"
#include "accel/service/job.hpp"

namespace fw::accel::service {

/// submit() rejected a job under the service's admission policy.
class AdmissionError : public std::runtime_error {
 public:
  explicit AdmissionError(const std::string& what) : std::runtime_error(what) {}
};

struct ServiceResult {
  EngineResult engine;
  /// Arrival of the first job to completion of the last (== engine exec time).
  Tick makespan = 0;
  /// Job latency (arrival to final walk) percentiles across all jobs.
  double latency_p50_ns = 0.0;
  double latency_p95_ns = 0.0;
  double latency_p99_ns = 0.0;
  /// Total real hops per simulated second over the makespan.
  double aggregate_steps_per_sec = 0.0;
  /// max/min weight-normalized per-job throughput (steps/sec while the job
  /// ran, divided by its fair-share weight); 1.0 = perfectly fair. Jobs that
  /// executed no steps are excluded.
  double fairness_ratio = 1.0;

  [[nodiscard]] const std::vector<JobResult>& jobs() const { return engine.jobs; }
};

class WalkService {
 public:
  /// `cfg.spec` is ignored (jobs carry their own specs); `cfg.jobs` must be
  /// empty — jobs enter through submit().
  explicit WalkService(const partition::PartitionedGraph& pg, SimulationConfig cfg = {});

  /// Admit a job into the service. Throws AdmissionError when the policy's
  /// max_jobs / max_total_walks caps reject it. Returns the job's id.
  JobId submit(WalkJob job);

  [[nodiscard]] std::size_t num_jobs() const { return jobs_.size(); }

  /// Run all submitted jobs to completion over the shared hierarchy.
  /// Throws std::logic_error when no jobs were submitted.
  ServiceResult run();

 private:
  const partition::PartitionedGraph* pg_;
  SimulationConfig cfg_;
  std::vector<WalkJob> jobs_;
  std::uint64_t submitted_walks_ = 0;
};

}  // namespace fw::accel::service
