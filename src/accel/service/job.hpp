// Walk job service types: the unit of multi-tenant work the engine
// multiplexes over the shared chip/channel/board hierarchy.
//
// A WalkJob bundles one walk workload (model, walk count, RNG seed) with the
// service-level attributes the scheduler consumes: a QoS class (or explicit
// weight) for the weighted-fair flash-read policy, an arrival tick, and an
// optional completion callback. Determinism contract: a job's walk output is
// a pure function of (job seed, walk id) — bit-identical whether the job
// runs alone or co-scheduled with arbitrary other jobs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "rw/spec.hpp"

namespace fw::accel::service {

using JobId = std::uint16_t;

/// Service classes for the weighted-fair flash-read scheduler. The class
/// maps to a deficit weight; an explicit WalkJob::weight overrides it.
enum class QosClass : std::uint8_t {
  kBronze,  ///< weight 1 (best effort)
  kSilver,  ///< weight 2
  kGold,    ///< weight 4 (latency-sensitive)
};

[[nodiscard]] constexpr std::uint32_t qos_weight(QosClass q) {
  switch (q) {
    case QosClass::kSilver: return 2;
    case QosClass::kGold: return 4;
    case QosClass::kBronze: break;
  }
  return 1;
}

[[nodiscard]] constexpr const char* qos_name(QosClass q) {
  switch (q) {
    case QosClass::kSilver: return "silver";
    case QosClass::kGold: return "gold";
    case QosClass::kBronze: break;
  }
  return "bronze";
}

struct JobStats {
  JobId id = 0;
  std::string name;
  QosClass qos = QosClass::kBronze;
  std::uint32_t weight = 1;
  std::uint64_t walks = 0;        ///< walks completed
  std::uint64_t steps = 0;        ///< real hops executed (== engine total_hops share)
  std::uint64_t parked_walks = 0; ///< walks parked behind faulted loads
  Tick arrival = 0;               ///< when the job was submitted to the service
  Tick admitted = 0;              ///< when admission control released it
  Tick completed = 0;             ///< when its final walk finished

  /// Time the job spent executing (admission to final walk).
  [[nodiscard]] Tick exec_ns() const { return completed - admitted; }
  /// End-to-end job latency (arrival to final walk), the percentile input.
  [[nodiscard]] Tick latency_ns() const { return completed - arrival; }
  /// Weight-normalized execution throughput, the fairness-ratio input.
  [[nodiscard]] double steps_per_sec() const {
    if (completed <= admitted) return 0.0;
    return static_cast<double>(steps) * 1e9 / static_cast<double>(exec_ns());
  }
};

struct WalkJob {
  std::string name;
  rw::WalkSpec spec;
  QosClass qos = QosClass::kBronze;
  /// Explicit fair-share weight; 0 derives the weight from `qos`.
  std::uint32_t weight = 0;
  /// Simulated tick at which the job reaches the service.
  Tick arrival = 0;
  /// Fired (synchronously, inside the simulation) when the job's final walk
  /// completes — before queued jobs waiting on its admission slot start.
  std::function<void(const JobStats&)> on_complete;
};

/// Per-job slice of an engine run. Output vectors are populated only for
/// explicit multi-job runs (EngineOptions::jobs non-empty) and mirror the
/// engine-level record_visits / record_endpoints / record_paths switches.
struct JobResult {
  JobStats stats;
  std::vector<std::uint64_t> visit_counts;
  std::vector<std::uint64_t> endpoint_counts;
  std::vector<std::vector<VertexId>> paths;
};

/// Admission control for the service: all limits are 0 = unlimited.
struct ServicePolicy {
  /// Jobs running concurrently; arrivals beyond this queue FIFO and are
  /// admitted as running jobs complete.
  std::uint32_t max_concurrent_jobs = 0;
  /// Hard cap on jobs the service accepts (submit rejects beyond it).
  std::uint32_t max_jobs = 0;
  /// Hard cap on the total expected walk count across accepted jobs.
  std::uint64_t max_total_walks = 0;
};

/// Expected walk count of a spec on a graph with `num_vertices` vertices
/// (kAllVertices derives the count from the graph).
[[nodiscard]] constexpr std::uint64_t expected_walks(const rw::WalkSpec& spec,
                                                     std::uint64_t num_vertices) {
  return spec.start_mode == rw::StartMode::kAllVertices ? num_vertices
                                                        : spec.num_walks;
}

}  // namespace fw::accel::service
