// Textual job-mix specification for the `--jobs` CLI flag.
//
// Grammar (';'-separated entries, each optionally repeated):
//
//   jobs    := entry (';' entry)*
//   entry   := [count '*'] model [':' kv (',' kv)*]
//   model   := any name in rw::model_registry()
//   kv      := key '=' value
//
// Common keys: walks, length, seed, qos (bronze|silver|gold), weight,
// arrive (ns), start (random|all|source), source. Model-specific keys come
// from the registry (node2vec: p/q; ppr: stop/stop_mode/eps; metapath:
// pattern; autoreg: alpha). Example:
//
//   --jobs "2*deepwalk:walks=1000;metapath:pattern=0-1-2;ppr:stop_mode=residual"
#pragma once

#include <string>
#include <vector>

#include "accel/service/job.hpp"

namespace fw::accel::service {

/// Workload-wide defaults a job entry inherits when it omits the key.
struct JobSpecDefaults {
  /// Per-job seed when `seed=` is absent: base_seed + kSeedStride * index,
  /// so co-scheduled jobs get distinct, reproducible streams.
  std::uint64_t base_seed = 42;
  std::uint64_t walks = 1000;
  std::uint32_t length = 6;
};

/// Seed spacing between jobs that did not set `seed=` explicitly.
inline constexpr std::uint64_t kSeedStride = 7919;

/// Parse a `--jobs` mix. Throws std::invalid_argument with a message
/// naming the offending entry/key on malformed input.
std::vector<WalkJob> parse_jobs(const std::string& spec, const JobSpecDefaults& defaults);

/// Multi-line `--help` text describing the grammar.
std::string jobs_help();

}  // namespace fw::accel::service
