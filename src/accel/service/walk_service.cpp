#include "accel/service/walk_service.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace fw::accel::service {

WalkService::WalkService(const partition::PartitionedGraph& pg, SimulationConfig cfg)
    : pg_(&pg), cfg_(std::move(cfg)) {
  if (!cfg_.jobs.empty()) {
    throw std::invalid_argument("WalkService: submit jobs via submit(), not the config");
  }
}

JobId WalkService::submit(WalkJob job) {
  const auto& policy = cfg_.policy;
  if (policy.max_jobs > 0 && jobs_.size() >= policy.max_jobs) {
    throw AdmissionError("WalkService: job count would exceed policy.max_jobs");
  }
  const std::uint64_t walks = expected_walks(job.spec, pg_->graph().num_vertices());
  if (policy.max_total_walks > 0 &&
      submitted_walks_ + walks > policy.max_total_walks) {
    throw AdmissionError("WalkService: walk count would exceed policy.max_total_walks");
  }
  if (job.name.empty()) job.name = "job" + std::to_string(jobs_.size());
  submitted_walks_ += walks;
  jobs_.push_back(std::move(job));
  return static_cast<JobId>(jobs_.size() - 1);
}

ServiceResult WalkService::run() {
  if (jobs_.empty()) {
    throw std::logic_error("WalkService::run: no jobs submitted");
  }
  EngineOptions opts = static_cast<const EngineOptions&>(cfg_);
  opts.jobs = jobs_;
  FlashWalkerEngine engine(*pg_, std::move(opts), FlashWalkerEngine::BuildAccess{});

  ServiceResult res;
  res.engine = engine.run();
  res.makespan = res.engine.exec_time;

  std::vector<double> latencies;
  latencies.reserve(res.engine.jobs.size());
  double min_rate = 0.0;
  double max_rate = 0.0;
  bool have_rate = false;
  for (const JobResult& jr : res.engine.jobs) {
    latencies.push_back(static_cast<double>(jr.stats.latency_ns()));
    const double rate =
        jr.stats.steps_per_sec() / static_cast<double>(std::max(1u, jr.stats.weight));
    if (rate <= 0.0) continue;  // zero-step jobs carry no throughput signal
    if (!have_rate) {
      min_rate = max_rate = rate;
      have_rate = true;
    } else {
      min_rate = std::min(min_rate, rate);
      max_rate = std::max(max_rate, rate);
    }
  }
  // Nearest-rank, not interpolated: an SLO percentile must be a latency
  // some job actually saw, and interpolation misbehaves on the tiny
  // samples (1-4 jobs) this service typically runs.
  res.latency_p50_ns = percentile_nearest_rank(latencies, 50);
  res.latency_p95_ns = percentile_nearest_rank(latencies, 95);
  res.latency_p99_ns = percentile_nearest_rank(latencies, 99);
  if (have_rate && min_rate > 0.0) res.fairness_ratio = max_rate / min_rate;
  if (res.makespan > 0) {
    res.aggregate_steps_per_sec = static_cast<double>(res.engine.metrics.total_hops) *
                                  1e9 / static_cast<double>(res.makespan);
  }
  return res;
}

}  // namespace fw::accel::service
