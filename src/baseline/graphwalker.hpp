// GraphWalker baseline (Wang et al., ATC '20) — our reimplementation of its
// two published ideas (paper §II.B):
//   1. asynchronous walk updating — a loaded block's walks keep hopping
//      until they leave the block or terminate (no iteration barrier);
//   2. state-aware scheduling — always load the block holding the most
//      walks next.
// Runs on the HostConfig CPU/memory model with all I/O through the shared
// simulated SSD (SsdDevice: flash planes → ONFI channels → PCIe).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/host_model.hpp"
#include "common/rng.hpp"
#include "partition/partitioned_graph.hpp"
#include "rw/sampler.hpp"
#include "rw/spec.hpp"
#include "rw/walk.hpp"
#include "ssd/nvme.hpp"
#include "ssd/ssd_device.hpp"

namespace fw::baseline {

struct BaselineResult {
  Tick exec_time = 0;
  TimeBreakdown breakdown;

  std::uint64_t walks_started = 0;
  std::uint64_t walks_completed = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t dead_ends = 0;

  std::uint64_t block_loads = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t bytes_read = 0;     ///< host reads (graph + walks)
  std::uint64_t bytes_written = 0;  ///< walk spills
  ssd::NvmeStats nvme;              ///< HIL command statistics
  std::uint64_t flash_read_bytes = 0;  ///< at the planes (Fig 6 comparison)

  [[nodiscard]] double read_mb_per_s() const {
    return bandwidth_mb_per_s(flash_read_bytes, exec_time);
  }

  std::vector<std::uint64_t> visit_counts;
};

struct GraphWalkerOptions {
  HostConfig host;
  ssd::SsdConfig ssd;
  ssd::NvmeConfig nvme;  ///< host I/O goes through the NVMe HIL model
  rw::WalkSpec spec;
  bool record_visits = true;
};

class GraphWalkerEngine {
 public:
  GraphWalkerEngine(const graph::CsrGraph& graph, GraphWalkerOptions options);
  ~GraphWalkerEngine();

  BaselineResult run();

  [[nodiscard]] std::uint32_t num_blocks() const;

 private:
  struct BlockState {
    std::vector<rw::Walk> walks;
    std::uint64_t spilled_bytes = 0;  ///< walk bytes currently on disk
    bool cached = false;
    std::uint64_t lru_stamp = 0;
  };

  std::uint32_t block_of(VertexId v) const;
  void ensure_cached(std::uint32_t block);
  void hop_walks_in_block(std::uint32_t block);

  const graph::CsrGraph* graph_;
  GraphWalkerOptions opt_;
  std::unique_ptr<partition::PartitionedGraph> blocks_view_;  ///< block layout
  std::unique_ptr<ssd::FlashArray> flash_;
  std::unique_ptr<ssd::SsdDevice> ssd_;
  std::unique_ptr<ssd::NvmeInterface> nvme_;
  std::unique_ptr<rw::ItsTable> its_;

  std::vector<BlockState> blocks_;
  std::uint64_t cached_bytes_ = 0;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t spill_buffered_ = 0;
  std::uint64_t remaining_walks_ = 0;

  Tick now_ = 0;
  Xoshiro256 rng_;
  BaselineResult result_;
};

}  // namespace fw::baseline
