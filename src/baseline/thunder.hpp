// ThunderRW-style in-memory baseline (Sun et al., VLDB '21 — cited by the
// paper as the state-of-the-art *in-memory* random walk engine).
//
// Model: the whole graph is loaded into host DRAM once (it must fit — the
// engine refuses otherwise, which is exactly the capacity limitation that
// motivates out-of-core and in-storage systems), then walks execute at an
// interleaved step-centric rate that hides DRAM latency with software
// prefetching — substantially faster per hop than GraphWalker's bucketed
// out-of-core loop.
#pragma once

#include <cstdint>
#include <memory>

#include "baseline/graphwalker.hpp"  // BaselineResult, HostConfig

namespace fw::baseline {

struct ThunderOptions {
  HostConfig host;
  ssd::SsdConfig ssd;
  ssd::NvmeConfig nvme;
  rw::WalkSpec spec;
  /// Per-hop cost with ThunderRW's interleaved prefetch pipeline
  /// (single-thread; effective rate scales with cores).
  Tick ns_per_hop_interleaved = 80;
  bool record_visits = true;
};

class ThunderEngine {
 public:
  /// Throws std::invalid_argument if the graph does not fit in
  /// `host.memory_bytes` — in-memory engines have no out-of-core path.
  ThunderEngine(const graph::CsrGraph& graph, ThunderOptions options);
  ~ThunderEngine();

  BaselineResult run();

 private:
  const graph::CsrGraph* graph_;
  ThunderOptions opt_;
  std::unique_ptr<ssd::FlashArray> flash_;
  std::unique_ptr<ssd::SsdDevice> ssd_;
  std::unique_ptr<ssd::NvmeInterface> nvme_;
  std::unique_ptr<rw::ItsTable> its_;
  Xoshiro256 rng_;
};

}  // namespace fw::baseline
