#include "baseline/drunkardmob.hpp"

#include <stdexcept>
#include <vector>

namespace fw::baseline {

DrunkardMobEngine::DrunkardMobEngine(const graph::CsrGraph& graph,
                                     DrunkardMobOptions options)
    : graph_(&graph), opt_(std::move(options)), rng_(opt_.spec.seed) {
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = opt_.host.block_bytes;
  pc.subgraphs_per_partition = 1u << 30;
  pc.weighted = opt_.spec.biased;
  blocks_view_ = std::make_unique<partition::PartitionedGraph>(graph, pc);
  flash_ = std::make_unique<ssd::FlashArray>(opt_.ssd);
  ssd_ = std::make_unique<ssd::SsdDevice>(*flash_);
  nvme_ = std::make_unique<ssd::NvmeInterface>(*ssd_, opt_.nvme);
  if (opt_.spec.biased) its_ = std::make_unique<rw::ItsTable>(graph);
}

DrunkardMobEngine::~DrunkardMobEngine() = default;

BaselineResult DrunkardMobEngine::run() {
  BaselineResult result;
  if (opt_.record_visits) result.visit_counts.assign(graph_->num_vertices(), 0);

  const std::uint32_t nblocks = blocks_view_->num_subgraphs();
  std::vector<std::vector<rw::Walk>> walks(nblocks);
  const std::uint64_t walk_sz = rw::walk_bytes(graph_->id_bytes());

  auto route = [&](rw::Walk w) {
    std::uint32_t dest = blocks_view_->subgraph_of(w.cur);
    if (blocks_view_->subgraph(dest).dense) {
      const EdgeId deg = graph_->out_degree(w.cur);
      if (deg > 0) {
        dest += rw::prewalk_block_choice(rng_.bounded(deg), blocks_view_->edges_per_block());
      }
    }
    walks[dest].push_back(w);
  };

  const VertexId n = graph_->num_vertices();
  auto start_walk = [&](VertexId v) {
    rw::Walk w;
    w.src = v;
    w.cur = v;
    w.hops_left = static_cast<std::uint16_t>(opt_.spec.length);
    route(w);
    ++result.walks_started;
  };
  switch (opt_.spec.start_mode) {
    case rw::StartMode::kAllVertices:
      for (VertexId v = 0; v < n; ++v) start_walk(v);
      break;
    case rw::StartMode::kUniformRandom:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) start_walk(rng_.bounded(n));
      break;
    case rw::StartMode::kSingleSource:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) start_walk(opt_.spec.source);
      break;
  }

  Tick now = 0;
  const Tick per_hop = opt_.host.effective_ns_per_hop();

  // One iteration per hop of the walk length: the iteration-wise barrier.
  for (std::uint32_t iter = 0; iter < opt_.spec.length; ++iter) {
    std::vector<std::vector<rw::Walk>> next(nblocks);
    bool any = false;
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      if (walks[b].empty()) continue;
      any = true;

      // Load the block and this iteration's walks.
      const auto& sg = blocks_view_->subgraph(b);
      Tick start = now;
      now = nvme_->read(now, b, sg.payload_bytes);
      result.breakdown.graph_load += now - start;
      result.bytes_read += sg.payload_bytes;
      ++result.block_loads;

      const std::uint64_t walk_bytes_in = walks[b].size() * walk_sz;
      start = now;
      now = nvme_->read(now, b, walk_bytes_in);
      result.breakdown.walk_load += now - start;
      result.bytes_read += walk_bytes_in;

      std::uint64_t moved_bytes = 0;
      std::uint64_t hops = 0;
      for (rw::Walk w : walks[b]) {
        if (opt_.spec.stop_prob > 0.0 && rng_.chance(opt_.spec.stop_prob)) {
          ++result.walks_completed;
          continue;
        }
        rw::SampleResult s;
        if (sg.dense) {
          s = its_ ? its_->sample_slice(*graph_, graph_->offsets()[sg.low_vid],
                                        sg.edge_begin, sg.edge_end, rng_)
                   : rw::sample_unbiased_slice(*graph_, sg.edge_begin, sg.edge_end, rng_);
        } else {
          s = its_ ? its_->sample(*graph_, w.cur, rng_)
                   : rw::sample_unbiased(*graph_, w.cur, rng_);
        }
        if (s.next == kInvalidVertex) {
          ++result.dead_ends;
          ++result.walks_completed;
          continue;
        }
        w.cur = s.next;
        --w.hops_left;
        ++hops;
        ++result.total_hops;
        if (!result.visit_counts.empty()) ++result.visit_counts[s.next];
        if (w.finished()) {
          ++result.walks_completed;
          continue;
        }
        // Iteration sync: updated walks are written back before the next
        // iteration (the slow-path the paper calls out).
        std::uint32_t dest = blocks_view_->subgraph_of(w.cur);
        if (blocks_view_->subgraph(dest).dense) {
          const EdgeId deg = graph_->out_degree(w.cur);
          dest += rw::prewalk_block_choice(rng_.bounded(deg),
                                           blocks_view_->edges_per_block());
        }
        next[dest].push_back(w);
        moved_bytes += walk_sz;
      }
      const Tick cpu = hops * per_hop;
      now += cpu;
      result.breakdown.compute += cpu;

      start = now;
      now = nvme_->write(now, b, moved_bytes);
      result.breakdown.walk_write += now - start;
      result.bytes_written += moved_bytes;
    }
    walks = std::move(next);
    if (!any) break;
  }
  // Any walks still alive after `length` iterations are finished by spec.
  for (const auto& blk : walks) result.walks_completed += blk.size();

  result.exec_time = now;
  result.flash_read_bytes = flash_->read_bytes();
  result.nvme = nvme_->stats();
  return result;
}

}  // namespace fw::baseline
