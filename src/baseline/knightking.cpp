#include "baseline/knightking.hpp"

#include <algorithm>
#include <stdexcept>

namespace fw::baseline {

KnightKingEngine::KnightKingEngine(const graph::CsrGraph& graph,
                                   KnightKingOptions options)
    : graph_(&graph), opt_(std::move(options)), rng_(opt_.spec.seed) {
  if (opt_.workers == 0) throw std::invalid_argument("KnightKing: zero workers");
  vertices_per_worker_ =
      (graph.num_vertices() + opt_.workers - 1) / opt_.workers;
  if (vertices_per_worker_ == 0) vertices_per_worker_ = 1;
  if (opt_.spec.biased) {
    if (!graph.weighted()) {
      throw std::invalid_argument("biased walk requires a weighted graph");
    }
    its_ = std::make_unique<rw::ItsTable>(graph);
  }
}

std::uint32_t KnightKingEngine::worker_of(VertexId v) const {
  return static_cast<std::uint32_t>(v / vertices_per_worker_);
}

KnightKingResult KnightKingEngine::run() {
  KnightKingResult result;
  BaselineResult& base = result.base;
  if (opt_.record_visits) base.visit_counts.assign(graph_->num_vertices(), 0);

  const std::uint32_t w = opt_.workers;
  std::vector<std::vector<rw::Walk>> resident(w);

  auto place = [&](rw::Walk walk) { resident[worker_of(walk.cur)].push_back(walk); };

  const VertexId n = graph_->num_vertices();
  auto start_walk = [&](VertexId v) {
    rw::Walk walk;
    walk.src = v;
    walk.cur = v;
    walk.hops_left = static_cast<std::uint16_t>(opt_.spec.length);
    place(walk);
    ++base.walks_started;
  };
  switch (opt_.spec.start_mode) {
    case rw::StartMode::kAllVertices:
      for (VertexId v = 0; v < n; ++v) start_walk(v);
      break;
    case rw::StartMode::kUniformRandom:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) start_walk(rng_.bounded(n));
      break;
    case rw::StartMode::kSingleSource:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) start_walk(opt_.spec.source);
      break;
  }

  const std::uint64_t walk_sz = rw::walk_bytes(graph_->id_bytes());
  Tick now = 0;

  while (true) {
    bool any = false;
    std::vector<std::vector<rw::Walk>> outgoing(w);
    std::vector<std::uint64_t> sent_bytes(w, 0), recv_bytes(w, 0);
    Tick max_compute = 0;

    for (std::uint32_t worker = 0; worker < w; ++worker) {
      auto walks = std::move(resident[worker]);
      resident[worker].clear();
      if (walks.empty()) continue;
      any = true;

      std::uint64_t hops = 0;
      for (rw::Walk walk : walks) {
        // Advance one hop per super-step (walkers that stay local could
        // keep going, but KnightKing's epochs batch communication; one hop
        // per step is the conservative, simple model).
        if (opt_.spec.stop_prob > 0.0 && rng_.chance(opt_.spec.stop_prob)) {
          ++base.walks_completed;
          continue;
        }
        const rw::SampleResult s = its_ ? its_->sample(*graph_, walk.cur, rng_)
                                        : rw::sample_unbiased(*graph_, walk.cur, rng_);
        if (s.next == kInvalidVertex) {
          ++base.dead_ends;
          ++base.walks_completed;
          continue;
        }
        walk.cur = s.next;
        --walk.hops_left;
        ++hops;
        ++base.total_hops;
        if (!base.visit_counts.empty()) ++base.visit_counts[s.next];
        if (walk.finished()) {
          ++base.walks_completed;
          continue;
        }
        const std::uint32_t dest = worker_of(walk.cur);
        if (dest == worker) {
          resident[worker].push_back(walk);
        } else {
          outgoing[dest].push_back(walk);
          sent_bytes[worker] += walk_sz;
          recv_bytes[dest] += walk_sz;
          ++result.forwarded_walkers;
          result.network_bytes += walk_sz;
        }
      }
      max_compute = std::max(max_compute, hops * opt_.ns_per_hop);
    }
    if (!any) break;
    ++result.supersteps;
    now += max_compute;
    result.compute_time += max_compute;

    // Exchange: each worker's NIC serializes its traffic (max of send and
    // receive as full-duplex), plus one batched-message latency.
    std::uint64_t max_nic_bytes = 0;
    for (std::uint32_t worker = 0; worker < w; ++worker) {
      max_nic_bytes =
          std::max({max_nic_bytes, sent_bytes[worker], recv_bytes[worker]});
    }
    if (max_nic_bytes > 0) {
      const Tick net = transfer_time_ns(max_nic_bytes, opt_.nic_mb_per_s) +
                       opt_.net_latency;
      now += net;
      result.network_time += net;
    }
    for (std::uint32_t worker = 0; worker < w; ++worker) {
      auto& in = outgoing[worker];
      resident[worker].insert(resident[worker].end(), in.begin(), in.end());
    }
  }

  base.exec_time = now;
  return result;
}

}  // namespace fw::baseline
