#include "baseline/thunder.hpp"

#include <stdexcept>

namespace fw::baseline {

ThunderEngine::ThunderEngine(const graph::CsrGraph& graph, ThunderOptions options)
    : graph_(&graph), opt_(std::move(options)), rng_(opt_.spec.seed) {
  if (graph.csr_size_bytes() > opt_.host.memory_bytes) {
    throw std::invalid_argument(
        "ThunderEngine: graph exceeds host memory (in-memory engine; use "
        "GraphWalkerEngine for out-of-core workloads)");
  }
  flash_ = std::make_unique<ssd::FlashArray>(opt_.ssd);
  ssd_ = std::make_unique<ssd::SsdDevice>(*flash_);
  nvme_ = std::make_unique<ssd::NvmeInterface>(*ssd_, opt_.nvme);
  if (opt_.spec.biased) {
    if (!graph.weighted()) {
      throw std::invalid_argument("biased walk requires a weighted graph");
    }
    its_ = std::make_unique<rw::ItsTable>(graph);
  }
}

ThunderEngine::~ThunderEngine() = default;

BaselineResult ThunderEngine::run() {
  BaselineResult result;
  if (opt_.record_visits) result.visit_counts.assign(graph_->num_vertices(), 0);

  // One-time full-graph load over NVMe.
  Tick now = 0;
  const Tick load_start = now;
  now = nvme_->read(now, 0, graph_->csr_size_bytes());
  result.breakdown.graph_load = now - load_start;
  result.bytes_read = graph_->csr_size_bytes();
  ++result.block_loads;

  // All walks execute in memory; interleaved stepping amortizes DRAM misses
  // so the per-hop rate beats the out-of-core engines.
  const Tick per_hop =
      opt_.ns_per_hop_interleaved / (opt_.host.cores == 0 ? 1 : opt_.host.cores);
  const VertexId n = graph_->num_vertices();

  auto one_walk = [&](VertexId start) {
    ++result.walks_started;
    VertexId cur = start;
    for (std::uint32_t hop = 0; hop < opt_.spec.length; ++hop) {
      if (opt_.spec.stop_prob > 0.0 && rng_.chance(opt_.spec.stop_prob)) break;
      rw::SampleResult s = its_ ? its_->sample(*graph_, cur, rng_)
                                : rw::sample_unbiased(*graph_, cur, rng_);
      if (s.next == kInvalidVertex) {
        if (opt_.spec.dead_end == rw::WalkSpec::DeadEnd::kRestart) {
          cur = start;
          continue;
        }
        ++result.dead_ends;
        break;
      }
      cur = s.next;
      ++result.total_hops;
      if (!result.visit_counts.empty()) ++result.visit_counts[cur];
    }
    ++result.walks_completed;
  };

  switch (opt_.spec.start_mode) {
    case rw::StartMode::kAllVertices:
      for (VertexId v = 0; v < n; ++v) one_walk(v);
      break;
    case rw::StartMode::kUniformRandom:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) one_walk(rng_.bounded(n));
      break;
    case rw::StartMode::kSingleSource:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) one_walk(opt_.spec.source);
      break;
  }

  const Tick cpu = result.total_hops * per_hop;
  now += cpu;
  result.breakdown.compute = cpu;
  result.exec_time = now;
  result.flash_read_bytes = flash_->read_bytes();
  result.nvme = nvme_->stats();
  return result;
}

}  // namespace fw::baseline
