// KnightKing-style distributed random-walk baseline (Yang et al., SOSP '19
// — cited §V as the distributed engine). Completes the comparator set:
// DrunkardMob (out-of-core, iteration-synchronous), GraphWalker
// (out-of-core, asynchronous), ThunderRW (in-memory, single node), and this
// (in-memory, distributed).
//
// Model: W workers each own a contiguous vertex range with their partition
// resident in memory. Execution proceeds in super-steps: every worker
// advances its resident walkers one hop (parallel compute), then walkers
// whose new vertex lives elsewhere are exchanged over the network (per-
// worker NIC bandwidth + per-batch latency, KnightKing's walker-batching).
// Makespan per super-step is the slowest worker's compute plus the slowest
// exchange.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/graphwalker.hpp"  // BaselineResult, HostConfig

namespace fw::baseline {

struct KnightKingOptions {
  std::uint32_t workers = 4;
  /// Per-worker walk-update rate (in-memory, multi-core per worker).
  Tick ns_per_hop = 25;
  /// Per-worker NIC line rate (decimal MB/s; 10 GbE ≈ 1250).
  std::uint64_t nic_mb_per_s = 1250;
  /// Per-super-step message latency (batching amortizes per-walker cost).
  Tick net_latency = 50 * kUs;
  rw::WalkSpec spec;
  bool record_visits = true;
};

struct KnightKingResult {
  BaselineResult base;
  std::uint64_t supersteps = 0;
  std::uint64_t forwarded_walkers = 0;  ///< cross-worker moves
  std::uint64_t network_bytes = 0;
  Tick compute_time = 0;
  Tick network_time = 0;

  [[nodiscard]] double forward_fraction() const {
    return base.total_hops == 0 ? 0.0
                                : static_cast<double>(forwarded_walkers) /
                                      static_cast<double>(base.total_hops);
  }
};

class KnightKingEngine {
 public:
  KnightKingEngine(const graph::CsrGraph& graph, KnightKingOptions options);

  KnightKingResult run();

  /// Worker owning vertex `v` (contiguous range partitioning).
  [[nodiscard]] std::uint32_t worker_of(VertexId v) const;

 private:
  const graph::CsrGraph* graph_;
  KnightKingOptions opt_;
  VertexId vertices_per_worker_;
  std::unique_ptr<rw::ItsTable> its_;
  Xoshiro256 rng_;
};

}  // namespace fw::baseline
