// Host-machine model for the software baselines (substitution, DESIGN.md
// §3.4): GraphWalker ran on an 8-core Ryzen 3700X @3.6 GHz with 32 GB DRAM
// (capped to 4/8/16 GB for the projection study) and a PCIe3 x4 NVMe SSD.
// We model the CPU as an aggregate walk-update rate and the memory as a
// block cache capacity, and route all I/O through the same simulated SSD
// the in-storage engine uses — so the comparison isolates architecture.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"

namespace fw::baseline {

struct HostConfig {
  std::uint32_t cores = 8;
  /// Single-thread cost of one walk update: random neighbor access plus
  /// GraphWalker's per-walk bucket management. 400 ns single-thread
  /// (50 ns effective across 8 cores, i.e. 2x10^7 hops/s) matches the
  /// compute-only rates GraphWalker reports.
  Tick ns_per_hop = 400;
  /// Graph block cache capacity. Paper default 8 GB against 5.8–95 GB
  /// graphs; the scaled default keeps the same graph:memory ratios against
  /// the scaled datasets (TT fits, FS ~1.6x, CW ~7x).
  std::uint64_t memory_bytes = 6 * MiB;
  /// GraphWalker's on-disk block granularity (paper: ~1 GB for ClueWeb;
  /// scaled to preserve blocks-per-graph).
  std::uint64_t block_bytes = 1 * MiB;
  /// Walk-spill write buffer: walks whose destination block is not cached
  /// are appended to per-block walk files through this buffer.
  std::uint64_t spill_buffer_bytes = 256 * KiB;

  [[nodiscard]] Tick effective_ns_per_hop() const {
    return ns_per_hop / (cores == 0 ? 1 : cores);
  }
};

/// Execution-time breakdown (paper Fig. 1's categories).
struct TimeBreakdown {
  Tick graph_load = 0;
  Tick walk_load = 0;
  Tick walk_write = 0;
  Tick compute = 0;

  [[nodiscard]] Tick total() const {
    return graph_load + walk_load + walk_write + compute;
  }
};

}  // namespace fw::baseline
