#include "baseline/graphwalker.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fw::baseline {

GraphWalkerEngine::GraphWalkerEngine(const graph::CsrGraph& graph,
                                     GraphWalkerOptions options)
    : graph_(&graph), opt_(std::move(options)), rng_(opt_.spec.seed) {
  partition::PartitionConfig pc;
  pc.block_capacity_bytes = opt_.host.block_bytes;
  pc.subgraphs_per_partition = 1u << 30;  // GraphWalker has no partitions
  pc.weighted = opt_.spec.biased;
  blocks_view_ = std::make_unique<partition::PartitionedGraph>(graph, pc);
  flash_ = std::make_unique<ssd::FlashArray>(opt_.ssd);
  ssd_ = std::make_unique<ssd::SsdDevice>(*flash_);
  nvme_ = std::make_unique<ssd::NvmeInterface>(*ssd_, opt_.nvme);
  if (opt_.spec.biased) {
    if (!graph.weighted()) {
      throw std::invalid_argument("biased walk requires a weighted graph");
    }
    its_ = std::make_unique<rw::ItsTable>(graph);
  }
  blocks_.resize(blocks_view_->num_subgraphs());
  if (opt_.record_visits) {
    result_.visit_counts.assign(graph.num_vertices(), 0);
  }
}

GraphWalkerEngine::~GraphWalkerEngine() = default;

std::uint32_t GraphWalkerEngine::num_blocks() const {
  return blocks_view_->num_subgraphs();
}

std::uint32_t GraphWalkerEngine::block_of(VertexId v) const {
  return blocks_view_->subgraph_of(v);
}

void GraphWalkerEngine::ensure_cached(std::uint32_t block) {
  BlockState& b = blocks_[block];
  b.lru_stamp = ++lru_clock_;
  if (b.cached) {
    ++result_.cache_hits;
    return;
  }
  const std::uint64_t need = blocks_view_->subgraph(block).payload_bytes;
  // Evict LRU blocks until the new one fits.
  while (cached_bytes_ + need > opt_.host.memory_bytes) {
    std::uint32_t victim = std::numeric_limits<std::uint32_t>::max();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
      if (blocks_[i].cached && i != block && blocks_[i].lru_stamp < oldest) {
        oldest = blocks_[i].lru_stamp;
        victim = i;
      }
    }
    if (victim == std::numeric_limits<std::uint32_t>::max()) break;
    blocks_[victim].cached = false;
    cached_bytes_ -= blocks_view_->subgraph(victim).payload_bytes;
  }

  const Tick start = now_;
  now_ = nvme_->read(now_, block, need);
  result_.breakdown.graph_load += now_ - start;
  result_.bytes_read += need;
  ++result_.block_loads;
  b.cached = true;
  cached_bytes_ += need;

  // Re-read any walks previously spilled to this block's walk file.
  if (b.spilled_bytes > 0) {
    const Tick wstart = now_;
    now_ = nvme_->read(now_, block, b.spilled_bytes);
    result_.breakdown.walk_load += now_ - wstart;
    result_.bytes_read += b.spilled_bytes;
    b.spilled_bytes = 0;
  }
}

void GraphWalkerEngine::hop_walks_in_block(std::uint32_t block) {
  BlockState& b = blocks_[block];
  const auto& sg = blocks_view_->subgraph(block);
  std::vector<rw::Walk> walks = std::move(b.walks);
  b.walks.clear();

  const Tick per_hop = opt_.host.effective_ns_per_hop();
  const std::uint64_t walk_sz = rw::walk_bytes(graph_->id_bytes());
  std::uint64_t hops = 0;

  auto complete = [&] {
    ++result_.walks_completed;
    --remaining_walks_;
  };
  // Route a walk out of this block; returns true if it actually left.
  auto route_out = [&](rw::Walk w) {
    std::uint32_t dest = block_of(w.cur);
    if (blocks_view_->subgraph(dest).dense) {
      // Pick the concrete block of the dense vertex ∝ block edge count —
      // equivalent to uniform edge choice across the whole vertex.
      const EdgeId deg = graph_->out_degree(w.cur);
      if (deg > 0) {
        dest += rw::prewalk_block_choice(rng_.bounded(deg),
                                         blocks_view_->edges_per_block());
      }
    }
    if (dest == block) return false;
    blocks_[dest].walks.push_back(w);
    if (!blocks_[dest].cached) {
      // Destination is on disk: the walk is appended to that block's walk
      // file through the spill buffer.
      blocks_[dest].spilled_bytes += walk_sz;
      spill_buffered_ += walk_sz;
      if (spill_buffered_ >= opt_.host.spill_buffer_bytes) {
        const Tick wstart = now_;
        now_ = nvme_->write(now_, 0, spill_buffered_);
        result_.breakdown.walk_write += now_ - wstart;
        result_.bytes_written += spill_buffered_;
        spill_buffered_ = 0;
      }
    }
    return true;
  };

  for (rw::Walk w : walks) {
    // Asynchronous updating: keep hopping while the walk stays in-block.
    while (true) {
      if (opt_.spec.stop_prob > 0.0 && rng_.chance(opt_.spec.stop_prob)) {
        complete();
        break;
      }
      rw::SampleResult s;
      if (sg.dense) {
        // A dense vertex split across blocks: sample within this block's
        // edge slice (block chosen ∝ size at routing time, in route_out).
        s = its_ ? its_->sample_slice(*graph_, graph_->offsets()[sg.low_vid],
                                      sg.edge_begin, sg.edge_end, rng_)
                 : rw::sample_unbiased_slice(*graph_, sg.edge_begin, sg.edge_end, rng_);
      } else {
        s = its_ ? its_->sample(*graph_, w.cur, rng_)
                 : rw::sample_unbiased(*graph_, w.cur, rng_);
      }
      if (s.next == kInvalidVertex) {
        if (opt_.spec.dead_end == rw::WalkSpec::DeadEnd::kRestart) {
          // Restart at source: consumes the hop, revisits nothing.
          w.cur = w.src;
          --w.hops_left;
          ++hops;
          if (w.finished()) {
            complete();
            break;
          }
          if (route_out(w)) break;
          continue;
        }
        ++result_.dead_ends;
        complete();
        break;
      }
      w.cur = s.next;
      --w.hops_left;
      ++hops;
      ++result_.total_hops;
      if (!result_.visit_counts.empty()) ++result_.visit_counts[s.next];
      if (w.finished()) {
        complete();
        break;
      }
      if (route_out(w)) break;
    }
  }
  const Tick cpu = hops * per_hop;
  now_ += cpu;
  result_.breakdown.compute += cpu;
}

BaselineResult GraphWalkerEngine::run() {
  // Start walks.
  const VertexId n = graph_->num_vertices();
  auto start_walk = [&](VertexId v) {
    rw::Walk w;
    w.src = v;
    w.cur = v;
    w.hops_left = static_cast<std::uint16_t>(opt_.spec.length);
    std::uint32_t dest = block_of(v);
    if (blocks_view_->subgraph(dest).dense) {
      const EdgeId deg = graph_->out_degree(v);
      if (deg > 0) {
        dest += rw::prewalk_block_choice(rng_.bounded(deg), blocks_view_->edges_per_block());
      }
    }
    blocks_[dest].walks.push_back(w);
    ++result_.walks_started;
  };
  switch (opt_.spec.start_mode) {
    case rw::StartMode::kAllVertices:
      for (VertexId v = 0; v < n; ++v) start_walk(v);
      break;
    case rw::StartMode::kUniformRandom:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) start_walk(rng_.bounded(n));
      break;
    case rw::StartMode::kSingleSource:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) start_walk(opt_.spec.source);
      break;
  }
  remaining_walks_ = result_.walks_started;

  // Main loop: state-aware scheduling — most walks first.
  while (remaining_walks_ > 0) {
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    std::size_t best_walks = 0;
    for (std::uint32_t i = 0; i < blocks_.size(); ++i) {
      if (blocks_[i].walks.size() > best_walks) {
        best_walks = blocks_[i].walks.size();
        best = i;
      }
    }
    if (best == std::numeric_limits<std::uint32_t>::max()) {
      throw std::logic_error("GraphWalkerEngine: walks lost");
    }
    ensure_cached(best);
    hop_walks_in_block(best);
  }

  result_.exec_time = now_;
  result_.flash_read_bytes = flash_->read_bytes();
  result_.nvme = nvme_->stats();
  return result_;
}

}  // namespace fw::baseline
