#include "baseline/graphssd.hpp"

#include <algorithm>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fw::baseline {
namespace {

/// Host-side LRU page cache (the buffer GraphSSD's host library keeps).
class PageLru {
 public:
  explicit PageLru(std::size_t capacity_pages)
      : capacity_(std::max<std::size_t>(capacity_pages, 1)) {}

  bool touch(std::uint64_t page) {
    const auto it = index_.find(page);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    order_.push_front(page);
    index_[page] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
    return false;
  }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
};

}  // namespace

GraphSsdEngine::GraphSsdEngine(const graph::CsrGraph& graph, GraphSsdOptions options)
    : graph_(&graph), opt_(std::move(options)), rng_(opt_.spec.seed) {
  flash_ = std::make_unique<ssd::FlashArray>(opt_.ssd);
  ssd_ = std::make_unique<ssd::SsdDevice>(*flash_);
  nvme_ = std::make_unique<ssd::NvmeInterface>(*ssd_, opt_.nvme);
  if (opt_.spec.biased) {
    if (!graph.weighted()) {
      throw std::invalid_argument("biased walk requires a weighted graph");
    }
    its_ = std::make_unique<rw::ItsTable>(graph);
  }
}

GraphSsdEngine::~GraphSsdEngine() = default;

std::uint64_t GraphSsdEngine::page_of(VertexId v) const {
  return graph_->offsets()[v] * graph_->id_bytes() / opt_.ssd.topo.page_bytes;
}

BaselineResult GraphSsdEngine::run() {
  BaselineResult result;
  if (opt_.record_visits) result.visit_counts.assign(graph_->num_vertices(), 0);

  const VertexId n = graph_->num_vertices();
  std::vector<rw::Walk> walks;
  auto start_walk = [&](VertexId v) {
    rw::Walk w;
    w.src = v;
    w.cur = v;
    w.hops_left = static_cast<std::uint16_t>(opt_.spec.length);
    walks.push_back(w);
    ++result.walks_started;
  };
  switch (opt_.spec.start_mode) {
    case rw::StartMode::kAllVertices:
      for (VertexId v = 0; v < n; ++v) start_walk(v);
      break;
    case rw::StartMode::kUniformRandom:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) start_walk(rng_.bounded(n));
      break;
    case rw::StartMode::kSingleSource:
      for (std::uint64_t i = 0; i < opt_.spec.num_walks; ++i) start_walk(opt_.spec.source);
      break;
  }

  PageLru cache(opt_.host.memory_bytes / opt_.ssd.topo.page_bytes);
  const Tick per_hop_cpu = opt_.host.effective_ns_per_hop();
  Tick now = 0;
  std::uint32_t qp = 0;

  // Hop-synchronous rounds: every alive walk issues one get-neighbors
  // request; distinct pages in the round go out as parallel NVMe commands
  // (the shared controller / flash resources provide the contention), and
  // the round completes when the slowest returns.
  while (!walks.empty()) {
    std::unordered_set<std::uint64_t> round_pages;
    for (const auto& w : walks) {
      const std::uint64_t page = page_of(w.cur);
      if (cache.touch(page)) {
        ++cache_hits_;
      } else {
        round_pages.insert(page);
      }
    }
    Tick round_done = now;
    for (const std::uint64_t page : round_pages) {
      (void)page;
      const Tick t = nvme_->read(now, qp++, opt_.ssd.topo.page_bytes);
      round_done = std::max(round_done, t);
      result.bytes_read += opt_.ssd.topo.page_bytes;
    }
    const Tick io = round_done - now;
    result.breakdown.graph_load += io;
    result.block_loads += round_pages.size();

    std::vector<rw::Walk> next;
    next.reserve(walks.size());
    std::uint64_t hops = 0;
    for (rw::Walk w : walks) {
      if (opt_.spec.stop_prob > 0.0 && rng_.chance(opt_.spec.stop_prob)) {
        ++result.walks_completed;
        continue;
      }
      const rw::SampleResult s = its_ ? its_->sample(*graph_, w.cur, rng_)
                                      : rw::sample_unbiased(*graph_, w.cur, rng_);
      if (s.next == kInvalidVertex) {
        if (opt_.spec.dead_end == rw::WalkSpec::DeadEnd::kRestart) {
          w.cur = w.src;
          --w.hops_left;
          ++hops;
          if (w.finished()) {
            ++result.walks_completed;
          } else {
            next.push_back(w);
          }
          continue;
        }
        ++result.dead_ends;
        ++result.walks_completed;
        continue;
      }
      w.cur = s.next;
      --w.hops_left;
      ++hops;
      ++result.total_hops;
      if (!result.visit_counts.empty()) ++result.visit_counts[s.next];
      if (w.finished()) {
        ++result.walks_completed;
      } else {
        next.push_back(w);
      }
    }
    const Tick cpu = hops * per_hop_cpu;
    now = round_done + cpu;
    result.breakdown.compute += cpu;
    walks = std::move(next);
  }

  result.cache_hits = cache_hits_;
  result.exec_time = now;
  result.flash_read_bytes = flash_->read_bytes();
  result.nvme = nvme_->stats();
  return result;
}

}  // namespace fw::baseline
