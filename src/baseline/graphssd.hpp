// GraphSSD-style baseline (Matam et al., ISCA '19 — cited by the paper's
// related work): the SSD understands graph semantics and serves
// "get-neighbors(v)" directly, but the *walk logic stays on the host*.
// Each hop whose neighbor page is not host-cached costs one small NVMe read.
//
// This isolates the paper's actual contribution: graph-semantic storage
// removes the block-granularity waste GraphWalker suffers, yet every hop
// still crosses flash → channel → PCIe and pays NVMe latency, whereas
// FlashWalker moves the hop itself into the SSD.
#pragma once

#include <cstdint>
#include <memory>

#include "baseline/graphwalker.hpp"  // BaselineResult, HostConfig

namespace fw::baseline {

struct GraphSsdOptions {
  HostConfig host;
  ssd::SsdConfig ssd;
  ssd::NvmeConfig nvme;
  rw::WalkSpec spec;
  bool record_visits = true;
};

class GraphSsdEngine {
 public:
  GraphSsdEngine(const graph::CsrGraph& graph, GraphSsdOptions options);
  ~GraphSsdEngine();

  BaselineResult run();

  /// Host page-cache hits observed (neighbor pages re-read for free).
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  /// Flash page holding v's neighbor list (CSR edge offset / page size).
  [[nodiscard]] std::uint64_t page_of(VertexId v) const;

  const graph::CsrGraph* graph_;
  GraphSsdOptions opt_;
  std::unique_ptr<ssd::FlashArray> flash_;
  std::unique_ptr<ssd::SsdDevice> ssd_;
  std::unique_ptr<ssd::NvmeInterface> nvme_;
  std::unique_ptr<rw::ItsTable> its_;
  Xoshiro256 rng_;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace fw::baseline
