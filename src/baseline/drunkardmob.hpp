// DrunkardMob/GraphChi-style iteration-synchronous baseline (paper §II.B's
// "drawbacks of existing systems"): every iteration streams the graph
// blocks that contain walks, advances each walk exactly ONE hop, and writes
// updated walks back before the next iteration may start. The iteration
// barrier is what GraphWalker (and FlashWalker) remove.
#pragma once

#include <cstdint>
#include <memory>

#include "baseline/graphwalker.hpp"  // BaselineResult, HostConfig

namespace fw::baseline {

struct DrunkardMobOptions {
  HostConfig host;
  ssd::SsdConfig ssd;
  ssd::NvmeConfig nvme;
  rw::WalkSpec spec;
  bool record_visits = true;
};

class DrunkardMobEngine {
 public:
  DrunkardMobEngine(const graph::CsrGraph& graph, DrunkardMobOptions options);
  ~DrunkardMobEngine();

  BaselineResult run();

 private:
  const graph::CsrGraph* graph_;
  DrunkardMobOptions opt_;
  std::unique_ptr<partition::PartitionedGraph> blocks_view_;
  std::unique_ptr<ssd::FlashArray> flash_;
  std::unique_ptr<ssd::SsdDevice> ssd_;
  std::unique_ptr<ssd::NvmeInterface> nvme_;
  std::unique_ptr<rw::ItsTable> its_;
  Xoshiro256 rng_;
};

}  // namespace fw::baseline
